"""E15 — instruction-dataset-size ablation.

The paper's pipeline collects 5.86k instances; this ablation asks how
much of that data the fine-tune actually needs by training on growing
fractions of the collected set and measuring held-out detection
accuracy.  Expected shape: accuracy grows (noisily) with data.
"""

import dataclasses

import numpy as np

from repro.core import HPCGPTSystem, SMALL_PRESET
from repro.datagen.prompts import race_instruction
from repro.detectors.llm_detector import yes_no_margin
from repro.drb import DRBSuite
from repro.finetune import SFTTrainer

from benchmarks._shared import write_out

FRACTIONS = (0.25, 1.0)


def _subset(records, fraction, rng):
    """Stratified subset: keep the task mix and yes/no balance."""
    by_group = {}
    for r in records:
        by_group.setdefault((r.task, r.output if r.task == "datarace" else ""), []).append(r)
    out = []
    for group in by_group.values():
        k = max(1, int(round(len(group) * fraction)))
        idx = rng.choice(len(group), size=k, replace=False)
        out.extend(group[i] for i in idx)
    return out


def test_data_size_ablation(benchmark):
    cfg = dataclasses.replace(SMALL_PRESET, use_cache=False)
    sys_ = HPCGPTSystem(cfg)
    records = sys_.collect_data().records
    base = sys_.registry.base_model("llama2-13b-sim")
    tok = sys_.tokenizer

    suite = DRBSuite.evaluation(seed=0)
    rng = np.random.default_rng(5)
    pool = [s for s in suite.by_language("C/C++") if "oversize" not in s.features]
    specs = list(rng.permutation(np.array(pool, dtype=object)))[:70]

    def run_fraction(fraction):
        sub = _subset(records, fraction, np.random.default_rng(11))
        model = base.copy()
        SFTTrainer(model, tok, cfg.sft).train(sub)
        task2 = [r for r in sub if r.task == "datarace"]
        yes_m = [yes_no_margin(model, tok, r.instruction) for r in task2 if r.output == "yes"][:40]
        no_m = [yes_no_margin(model, tok, r.instruction) for r in task2 if r.output == "no"][:40]
        thr = (np.median(yes_m) + np.median(no_m)) / 2 if yes_m and no_m else 0.0
        ok = 0
        for s in specs:
            m = yes_no_margin(model, tok, race_instruction(s.source, s.language))
            ok += (m >= thr) == (s.label == "yes")
        return len(sub), ok / len(specs)

    results = benchmark.pedantic(
        lambda: {f: run_fraction(f) for f in FRACTIONS}, rounds=1, iterations=1
    )

    lines = ["E15 — instruction-data-size ablation (small preset, C/C++ sample)"]
    for frac, (n, acc) in results.items():
        lines.append(f"  fraction {frac:>5.0%}  ({n:>4} records)  accuracy={acc:.3f}")
    write_out("ablation_data_size.txt", "\n".join(lines))

    # Full data should not be worse than a quarter of it by a wide margin.
    assert results[1.0][1] >= results[0.25][1] - 0.08
    assert results[1.0][1] >= 0.6
