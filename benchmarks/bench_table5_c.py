"""E5 — Table 5, C/C++ block: all ten detectors on the 177-program
evaluation suite (88 race / 89 race-free).

The first invocation builds the full system (pretraining + SFT of both
HPC-GPT models, cached under ``.repro_cache/``); the benchmark then
times the shared-trace evaluation of the four tool detectors.
"""

from repro.detectors.base import Verdict
from repro.eval import render_table5

from benchmarks._shared import (
    eval_suite, harness, paper_shape, system, table5_output, write_out,
)


def test_table5_c(benchmark):
    out = table5_output()
    write_out("table5_c.txt", render_table5(out.rows, "C/C++"))

    rows = {r.tool: r for r in out.rows if r.language == "C/C++"}

    # Composition sanity (preset-independent).
    total = rows["LLOV"].counts.total
    assert total == 177

    # Paper shape assertions (§4.7.2, Table 5 C/C++) — paper preset only:
    # the small preset's tiny models make these orderings seed-noise.
    if paper_shape():
        # 1. ThreadSanitizer: best precision/specificity among the four tools.
        tools = ["LLOV", "Intel Inspector", "ROMP", "Thread Sanitizer"]
        assert rows["Thread Sanitizer"].precision == max(rows[t].precision for t in tools)
        # 2. The LLM token budget: TSR = 163/177 = 0.9209 for every LLM method.
        for llm in ("GPT-3.5", "GPT-4", "LLaMa", "LLaMa2", "HPC-GPT (L1)", "HPC-GPT (L2)"):
            assert abs(rows[llm].tsr - 163 / 177) < 1e-6, llm
        # 3. Base LLaMA models sit near chance; HPC-GPT far above them.
        for base in ("LLaMa", "LLaMa2"):
            assert rows[base].accuracy < 0.65
        for tuned in ("HPC-GPT (L1)", "HPC-GPT (L2)"):
            assert rows[tuned].accuracy > rows["GPT-4"].accuracy
            assert rows[tuned].accuracy > rows["LLaMa2"].accuracy + 0.2
        # 4. GPT-4 beats GPT-3.5.
        assert rows["GPT-4"].accuracy > rows["GPT-3.5"].accuracy

    # Benchmark: the four-tool evaluation over the shared trace cache.
    from repro.detectors import build_tool_detectors

    h = harness()
    for spec in eval_suite().by_language("C/C++"):
        h.traces_for(spec)  # warm the cache outside the timed region

    def run_tools():
        return h.run(build_tool_detectors(), languages=("C/C++",))

    benchmark.pedantic(run_tools, rounds=1, iterations=1)
