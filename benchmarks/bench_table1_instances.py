"""E1 — Table 1: instruction instances for both HPC tasks.

Regenerates the two example instances the paper shows (a Task-1 QA pair
and a Task-2 detection pair) through the actual teacher + filter path,
and benchmarks the per-instance emission cost.
"""

import json

from repro.datagen import DataCollectionPipeline, TeacherConfig, TeacherLM
from repro.drb import DRBSuite
from repro.knowledge import build_knowledge_base

from benchmarks._shared import write_out


def _collect_examples():
    kb = build_knowledge_base()
    pipeline = DataCollectionPipeline(teacher=TeacherLM(TeacherConfig()))
    poj = next(
        c for c in kb if c.task == "plp" and c.facts.get("Dataset Name") == "POJ-104"
    )
    t1 = pipeline.collect_task1([poj], targets={"Clone detection": 1})
    pool = DRBSuite.training(n_per_category=2).chunks()
    racy = next(c for c in pool if c.facts["label"] == "yes")
    t2 = pipeline.collect_task2([racy], targets={("C/C++", racy.category): 1})
    return t1.records[0], t2.records[0]


def test_table1_instances(benchmark):
    rec1, rec2 = benchmark(_collect_examples)
    lines = ["Table 1: Instance with An Instruction", "", "Task 1: Model and datasets for HPC"]
    lines.append(json.dumps(rec1.to_training_json(), indent=1))
    lines += ["", "Task 2: Data Race Detection"]
    lines.append(json.dumps(rec2.to_training_json(), indent=1))
    write_out("table1_instances.txt", "\n".join(lines))

    assert rec1.output and rec2.output in ("yes", "no")
    assert "data race problem" in rec2.instruction
