"""Shared state for the benchmark suite.

The heavy artifacts (pretrained bases, fine-tuned HPC-GPT models, the
Table-5 harness results) are built once per interpreter and persisted
under ``.repro_cache/`` so repeated bench runs skip training.  Rendered
paper tables are written to ``benchmarks/out/``.

Set ``REPRO_BENCH_PRESET=small`` to run the whole bench suite with the
fast preset (useful for smoke-testing the harness itself).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import HPCGPTSystem, PAPER_PRESET, SMALL_PRESET
from repro.drb import DRBSuite
from repro.eval import EvaluationHarness, HarnessConfig
from repro.eval.metrics import MetricRow

OUT_DIR = Path(__file__).parent / "out"
OUT_DIR.mkdir(exist_ok=True)

_SYSTEM: HPCGPTSystem | None = None
_SUITE: DRBSuite | None = None
_HARNESS: EvaluationHarness | None = None
_TABLE5 = None


def preset():
    return SMALL_PRESET if os.environ.get("REPRO_BENCH_PRESET") == "small" else PAPER_PRESET


def paper_shape() -> bool:
    """Whether paper-shape assertions apply: Table-5 composition claims
    (counts, TSR fractions, accuracy orderings) only hold at the paper
    preset — the small preset exists to smoke-test the harness, and its
    tiny models make those shapes seed-noise."""
    return preset() is PAPER_PRESET


def system() -> HPCGPTSystem:
    global _SYSTEM
    if _SYSTEM is None:
        _SYSTEM = HPCGPTSystem(preset())
    return _SYSTEM


def eval_suite() -> DRBSuite:
    global _SUITE
    if _SUITE is None:
        _SUITE = DRBSuite.evaluation(seed=0)
    return _SUITE


def harness() -> EvaluationHarness:
    global _HARNESS
    if _HARNESS is None:
        # Default HarnessConfig: 4 explored schedules, so schedule-dependent
        # tool behaviour (Inspector's lockset FPs) can manifest.
        _HARNESS = EvaluationHarness(eval_suite(), HarnessConfig(n_threads=2))
    return _HARNESS


def table5_output():
    """Run (once) the full Table-5 evaluation: all ten detectors, both
    languages.  Also serialises metric rows for the improvements bench."""
    global _TABLE5
    if _TABLE5 is None:
        detectors = system().table5_detectors()
        _TABLE5 = harness().run(detectors)
        rows = [
            {
                "tool": r.tool, "language": r.language,
                "tp": r.counts.tp, "fp": r.counts.fp, "tn": r.counts.tn,
                "fn": r.counts.fn, "unsupported": r.counts.unsupported,
                "recall": r.recall, "specificity": r.specificity,
                "precision": r.precision, "accuracy": r.accuracy,
                "tsr": r.tsr, "f1": r.f1, "adjusted_f1": r.adjusted_f1,
            }
            for r in _TABLE5.rows
        ]
        (OUT_DIR / "table5_rows.json").write_text(json.dumps(rows, indent=1))
    return _TABLE5


def write_out(name: str, text: str) -> None:
    (OUT_DIR / name).write_text(text + "\n")
    print(text)
