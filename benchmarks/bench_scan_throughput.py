"""Scan-subsystem throughput: kernels/sec and the cache-hit speedup.

The workload is the exported DataRaceBench-equivalent suite (343
kernels, both languages) scanned twice through the full ensemble
(four tools in the worker pool + batched HPC-GPT margins):

* **cold** — empty verdict cache: every kernel runs the tools and the
  engine;
* **warm** — unchanged tree, same cache: every kernel is served from
  the content-addressed store and only walk/extract/IO remains.

Writes ``BENCH_scan.json`` with kernels/sec for both passes and the
wall-clock speedup (the acceptance floor is 5x).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.scan import ScanConfig, ScanPipeline

from benchmarks._shared import OUT_DIR, eval_suite, system


def test_scan_throughput(benchmark):
    sys_ = system()
    sys_.finetuned("l2")  # build outside the timed region

    work = Path(tempfile.mkdtemp(prefix="repro-scan-bench-"))
    try:
        tree = work / "tree"
        n_kernels = eval_suite().write_tree(tree)
        cache_dir = work / "cache"

        def pipeline():
            return ScanPipeline(
                system=sys_, config=ScanConfig(cache_dir=cache_dir)
            )

        t0 = time.perf_counter()
        cold = pipeline().scan(tree)
        cold_s = time.perf_counter() - t0
        assert cold.totals["kernels"] == n_kernels
        assert cold.totals["cache_hits"] == 0

        t0 = time.perf_counter()
        warm = pipeline().scan(tree)
        warm_s = time.perf_counter() - t0
        assert warm.totals["cache_hits"] == warm.totals["kernels"]
        # Cached and fresh scans must agree verdict-for-verdict.
        assert [k.to_dict() | {"cached": None} for k in warm.kernels] == [
            k.to_dict() | {"cached": None} for k in cold.kernels
        ]

        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        payload = {
            "kernels": n_kernels,
            "unique_kernels": cold.totals["unique_kernels"],
            "races_flagged": cold.totals["races"],
            "cold_s": round(cold_s, 3),
            "warm_s": round(warm_s, 3),
            "kernels_per_s_cold": round(n_kernels / cold_s, 2),
            "kernels_per_s_warm": round(n_kernels / warm_s, 2),
            "cache_speedup": round(speedup, 2),
            "timing_cold": cold.timing,
            "timing_warm": warm.timing,
        }
        (OUT_DIR / "BENCH_scan.json").write_text(json.dumps(payload, indent=1) + "\n")
        print(json.dumps(payload, indent=1))
        assert speedup >= 5.0, f"cache speedup {speedup:.1f}x below the 5x floor"

        # The timed region: a warm scan of the unchanged tree.
        benchmark.pedantic(lambda: pipeline().scan(tree), rounds=3, iterations=1)
    finally:
        shutil.rmtree(work, ignore_errors=True)
