"""E12 — Listing 4: the MLPerf-task qualitative comparison.

Question: which System pairs the NVIDIA H100-SXM5-80GB accelerator with
MXNet NVIDIA Release 23.04 (gold: dgxh100_n64).
"""

from repro.eval.task1_eval import Task1Evaluator

from benchmarks._shared import system, write_out

QUESTION = ("What is the System if the Accelerator used is NVIDIA H100-SXM5-80GB "
            "and the Software used is MXNet NVIDIA Release 23.04?")
GOLD = "dgxh100_n64"


def test_listing4_mlperf(benchmark):
    methods = system().task1_methods()

    def ask_all():
        return {name: fn(QUESTION) for name, fn in methods.items()}

    answers = benchmark.pedantic(ask_all, rounds=1, iterations=1)

    lines = ["Listing 4 — MLPerf task example", f"Question: {QUESTION}", ""]
    for name, ans in answers.items():
        lines.append(f"Answer ({name}): {ans}")
    write_out("listing4_mlperf.txt", "\n".join(lines))

    assert not Task1Evaluator.contains_entity(answers["GPT-4"] or "", GOLD)
    assert answers["HPC-Ontology"] == GOLD
    assert isinstance(answers["HPC-GPT (L2)"], str) and answers["HPC-GPT (L2)"].strip()
