"""E9 — Figure 2: transformation of unsupervised structured data.

Regenerates the figure's own example (the Devign defect-detection row
rendered as a sentence) and benchmarks the transformation of the whole
structured knowledge base.
"""

from repro.knowledge import build_mlperf_table, build_plp_catalog
from repro.knowledge.corpus import attribute_concat, mlperf_chunk, plp_chunk, slot_fill
from repro.knowledge.plp_catalog import PLPEntry

from benchmarks._shared import write_out


def _transform_all():
    catalog = build_plp_catalog()
    table = build_mlperf_table()
    return [plp_chunk(e) for e in catalog] + [mlperf_chunk(r) for r in table]


def test_fig2_transform(benchmark):
    chunks = benchmark(_transform_all)

    devign = PLPEntry(
        "Defect detection", "Defect Detection", "Devign", "C", "CodeBERT", "Accuracy"
    )
    figure_text = slot_fill(devign)
    concat_text = attribute_concat(
        {"Task": "Defect Detection", "Dataset Name": "Devign", "Language": "c"}
    )
    lines = [
        "Figure 2 — transformation of unsupervised structured data",
        "",
        "structured row : Task=Defect Detection | Dataset=Devign | Language=C",
        "slot-filled    : " + figure_text,
        "attr-concat    : " + concat_text,
        f"knowledge base : {len(chunks)} chunks transformed",
    ]
    write_out("fig2_transform.txt", "\n".join(lines))

    assert 'A task called "Defect Detection"' in figure_text
    assert '"Devign,"' in figure_text
    assert "programming language employed is C" in figure_text
    assert all(c.text for c in chunks)
