"""Training throughput: the unified-trainer levers, measured.

Times the two training workloads everything builds on:

* **pretrain** (packed-stream next-token training): tokens/sec through
  the :class:`repro.train.Trainer`, cold vs resumed — a run restarted
  from a mid-run :mod:`repro.train.checkpoint` file must pay only the
  checkpoint load, not a restart from step 0;
* **SFT** (instruction fine-tuning): tokens/sec for the *seed loop*
  (the pre-PR ``SFTTrainer.train`` body, replicated verbatim below:
  shuffle-then-pad batching + reference cross-entropy over every
  position) vs the unified trainer unbucketed (fused CE + supervised
  -only head) vs bucketed (plus length-bucketed batching).

The two SFT levers compound: the fused objective projects only the
supervised answer span through the LM head (~18% of positions on the
small preset), and bucketing stops a shuffled batch from padding short
QA rows out to the longest code row it happened to contain.

Writes ``benchmarks/out/BENCH_train.json``.  Defaults to the small
preset; set ``REPRO_BENCH_PRESET=paper`` for the full configuration.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time

import numpy as np

from _shared import OUT_DIR, write_out
from repro.core import HPCGPTSystem, PAPER_PRESET, SMALL_PRESET
from repro.finetune import SFTTrainer
from repro.finetune.dataset import SFTDataset
from repro.llm.pretrain import pretrain_trainer
from repro.llm.registry import BASE_RECIPES
from repro.nn import AdamW, GradClipper, apply_lora
from repro.tensor import cross_entropy_logits
from repro.train.fp16 import LossScaler, round_to_fp16
from repro.utils.rng import derive_rng

SFT_EPOCHS = 2


def bench_pretrain(cfg) -> dict:
    """Cold run vs checkpoint+resume of the same pretraining recipe."""
    recipe = BASE_RECIPES["llama2-13b-sim"]
    pre = dataclasses.replace(
        cfg.pretrain, corpus_scale=recipe["corpus_scale"], seed=recipe["seed"]
    )
    model_cfg = dataclasses.replace(cfg.model, name="bench-train")

    trainer, tok = pretrain_trainer(model_cfg, pre)
    t0 = time.perf_counter()
    cold = trainer.train()
    cold_sec = time.perf_counter() - t0

    half = pre.steps // 2
    with tempfile.TemporaryDirectory() as tmp:
        ck = os.path.join(tmp, "pretrain.npz")
        # A full run that snapshots at the halfway point; the resumed
        # run then replays only the second half from that file.
        first, _ = pretrain_trainer(
            model_cfg, pre, tokenizer=tok, checkpoint_every=half, checkpoint_path=ck
        )
        first.train()
        resumed_trainer, _ = pretrain_trainer(model_cfg, pre, tokenizer=tok)
        t0 = time.perf_counter()
        resumed = resumed_trainer.train(resume_from=ck)
        resumed_sec = time.perf_counter() - t0
    return {
        "steps": pre.steps,
        "resume_point": half,
        "seconds": {"cold": cold_sec, "resumed_half": resumed_sec},
        "tokens_per_sec": {
            "cold": cold.tokens / cold_sec,
            # resumed.tokens counts only post-resume forwards, so this
            # rate includes the checkpoint-load overhead.
            "resumed": resumed.tokens / resumed_sec,
        },
        "loss_parity": bool(np.allclose(cold.losses, resumed.losses)),
    }


def seed_sft_loop(cfg, base, tok, records) -> tuple[float, int]:
    """The pre-PR ``SFTTrainer.train`` body, kept verbatim as the
    baseline: shuffled batches padded to their longest row, reference
    cross-entropy over every position."""
    sft = dataclasses.replace(cfg.sft, epochs=SFT_EPOCHS)
    model = base.copy()
    lora_rng = derive_rng(sft.seed, "sft/lora")
    apply_lora(model, sft.lora, lora_rng)  # same wrapping as the seed trainer
    max_len = min(sft.max_seq_len, model.config.max_seq_len)
    dataset = SFTDataset(records, tok, max_seq_len=max_len)
    params = model.trainable_parameters()
    opt = AdamW(params, lr=sft.lr, weight_decay=sft.weight_decay)
    clipper = GradClipper(sft.grad_clip)
    scaler = LossScaler(sft.fp16)
    data_rng = derive_rng(sft.seed, "sft/batches")
    model.train()
    tokens = 0
    t0 = time.perf_counter()
    for _ in range(sft.epochs):
        for batch in dataset.batches(sft.batch_size, rng=data_rng,
                                     pad_id=tok.special.pad_id):
            logits = model.forward(batch.ids)
            loss = cross_entropy_logits(logits, batch.targets)
            opt.zero_grad()
            loss.backward(np.asarray(scaler.loss_factor(), dtype=np.float32))
            tokens += batch.ids.size
            if not scaler.unscale_and_check(params):
                continue
            clipper.clip(params)
            opt.step()
            if sft.fp16.enabled:
                round_to_fp16(model, trainable_only=True)
    model.eval()
    return time.perf_counter() - t0, tokens


def trainer_sft_loop(cfg, base, tok, records, bucket: bool) -> tuple[float, int]:
    sft = dataclasses.replace(cfg.sft, epochs=SFT_EPOCHS, bucket_by_length=bucket)
    model = base.copy()
    # Assemble outside the timed region, mirroring the seed baseline
    # (its clock also starts after dataset/optimizer setup) so the
    # speedup compares loop wall-clock against loop wall-clock.
    trainer = SFTTrainer(model, tok, sft).trainer(records)
    t0 = time.perf_counter()
    report = trainer.train()
    return time.perf_counter() - t0, report.tokens


def main() -> None:
    cfg = PAPER_PRESET if os.environ.get("REPRO_BENCH_PRESET") == "paper" else SMALL_PRESET
    system = HPCGPTSystem(cfg)
    records = system.collect_data().records
    base = system.registry.base_model("llama2-13b-sim")
    tok = system.tokenizer

    pretrain_stats = bench_pretrain(cfg)

    seed_sec, seed_tokens = seed_sft_loop(cfg, base, tok, records)
    unb_sec, unb_tokens = trainer_sft_loop(cfg, base, tok, records, bucket=False)
    buck_sec, buck_tokens = trainer_sft_loop(cfg, base, tok, records, bucket=True)

    payload = {
        "preset": cfg.model.name,
        "model": {
            "dim": cfg.model.dim,
            "n_layers": cfg.model.n_layers,
            "vocab_size": cfg.model.vocab_size,
            "max_seq_len": cfg.model.max_seq_len,
        },
        "pretrain": pretrain_stats,
        "sft": {
            "epochs": SFT_EPOCHS,
            "n_records": len(records),
            "padded_tokens": {
                "seed_loop": seed_tokens,
                "trainer_unbucketed": unb_tokens,
                "trainer_bucketed": buck_tokens,
            },
            "seconds": {
                "seed_loop": seed_sec,
                "trainer_unbucketed": unb_sec,
                "trainer_bucketed": buck_sec,
            },
            "tokens_per_sec": {
                "seed_loop": seed_tokens / seed_sec,
                "trainer_unbucketed": unb_tokens / unb_sec,
                "trainer_bucketed": buck_tokens / buck_sec,
            },
            "speedup": {
                "trainer_unbucketed_vs_seed": seed_sec / unb_sec,
                "trainer_bucketed_vs_seed": seed_sec / buck_sec,
            },
        },
    }
    (OUT_DIR / "BENCH_train.json").write_text(json.dumps(payload, indent=1) + "\n")

    sft = payload["sft"]
    write_out(
        "bench_train_throughput.txt",
        "\n".join(
            [
                f"Training throughput ({cfg.model.name}, {len(records)} SFT records)",
                f"  pretrain      cold: {pretrain_stats['tokens_per_sec']['cold']:9,.0f} tok/s   "
                f"resumed: {pretrain_stats['tokens_per_sec']['resumed']:9,.0f} tok/s   "
                f"(loss parity: {pretrain_stats['loss_parity']})",
                f"  SFT           seed loop: {sft['seconds']['seed_loop']:.2f}s   "
                f"trainer: {sft['seconds']['trainer_unbucketed']:.2f}s   "
                f"bucketed: {sft['seconds']['trainer_bucketed']:.2f}s",
                f"                speedup vs seed: "
                f"{sft['speedup']['trainer_unbucketed_vs_seed']:.2f}x unbucketed, "
                f"{sft['speedup']['trainer_bucketed_vs_seed']:.2f}x bucketed",
                f"  artifact: {OUT_DIR / 'BENCH_train.json'}",
            ]
        ),
    )


if __name__ == "__main__":
    main()
