"""Inference throughput: the batching lever, measured.

Times the two engine workloads every consumer runs, over real Table-5
race prompts:

* **generation** (batched prefill + incremental decode): tokens/sec at
  batch width 1 vs 16 — decode steps are tiny-matmul dispatch-bound
  work, so micro-batching 16 rows amortises nearly all of it;
* **margin scoring** (``logit(" yes") - logit(" no")``): margins/sec for
  the pre-engine *sequential path* (one full forward per prompt, all
  positions through the LM head — what ``yes_no_margin`` did before the
  engine existed), vs the engine at batch 1 and batch 16.

Margin prefill at these prompt lengths is bandwidth-bound single-core
compute, so its batched ceiling is architectural: the sequential path
pays (n_layers full + full-T head) per prompt while the batched path
cannot go below (n_layers - 1 full layers) — about 2.3x for the 2-layer
presets here; more cores move that ceiling, more batch width does not.

Writes ``benchmarks/out/BENCH_inference.json`` so the perf trajectory is
tracked from this PR onward.  Defaults to the small preset; set
``REPRO_BENCH_PRESET=paper`` for the full bench configuration.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _shared import OUT_DIR, write_out
from repro.core import HPCGPTSystem, PAPER_PRESET, SMALL_PRESET
from repro.datagen.prompts import race_instruction
from repro.drb import DRBSuite
from repro.llm import GenerationConfig, InferenceEngine
from repro.tensor import no_grad

N_PROMPTS = 32
BIG_BATCH = 16
MAX_NEW_TOKENS = 16
REPEATS = 3


def _rate(n_items: int, fn) -> float:
    fn()  # warm
    start = time.perf_counter()
    for _ in range(REPEATS):
        fn()
    return REPEATS * n_items / (time.perf_counter() - start)


def main() -> None:
    cfg = PAPER_PRESET if os.environ.get("REPRO_BENCH_PRESET") == "paper" else SMALL_PRESET
    system = HPCGPTSystem(cfg)
    # The pretrained base suffices for throughput (SFT changes weights,
    # not FLOPs) and keeps the bench warm-up to seconds.
    model = system.registry.base_model("llama2-13b-sim")
    engine = InferenceEngine(model, system.tokenizer)

    suite = DRBSuite.evaluation(seed=0)
    specs = [s for s in suite.by_language("C/C++") if "oversize" not in s.features]
    specs = specs[:N_PROMPTS]
    instructions = [race_instruction(s.source, s.language) for s in specs]
    prompts = [engine.chat.prompt_ids(i) for i in instructions]
    limit = model.config.max_seq_len - 1
    prompts = [p[-limit:] if len(p) > limit else p for p in prompts]

    # -- margin scoring ------------------------------------------------------

    def sequential_margins() -> None:
        # The pre-engine path: one full forward per prompt, every
        # position through the final block and the LM head.
        with no_grad():
            for p in prompts:
                model.forward(np.asarray(p)).numpy()[0, -1]

    margins_seq = _rate(len(prompts), sequential_margins)
    margins_b1 = _rate(len(prompts), lambda: engine.next_token_logits(prompts, batch_size=1))
    margins_b16 = _rate(
        len(prompts), lambda: engine.next_token_logits(prompts, batch_size=BIG_BATCH)
    )

    # -- generation ----------------------------------------------------------

    gen_cfg = GenerationConfig(max_new_tokens=MAX_NEW_TOKENS, stop_at_eos=False)
    n_tokens = sum(len(o) for o in engine.generate_many(prompts, gen_cfg, batch_size=BIG_BATCH))
    tokens_b1 = _rate(n_tokens, lambda: engine.generate_many(prompts, gen_cfg, batch_size=1))
    tokens_b16 = _rate(
        n_tokens, lambda: engine.generate_many(prompts, gen_cfg, batch_size=BIG_BATCH)
    )

    payload = {
        "preset": cfg.model.name,
        "model": {
            "dim": cfg.model.dim,
            "n_layers": cfg.model.n_layers,
            "n_heads": cfg.model.n_heads,
            "max_seq_len": cfg.model.max_seq_len,
        },
        "n_prompts": len(prompts),
        "max_new_tokens": MAX_NEW_TOKENS,
        "margins_per_sec": {
            "sequential_path": margins_seq,
            "batch_1": margins_b1,
            f"batch_{BIG_BATCH}": margins_b16,
        },
        "tokens_per_sec": {"batch_1": tokens_b1, f"batch_{BIG_BATCH}": tokens_b16},
        "speedup": {
            "margins_batched_vs_sequential": margins_b16 / margins_seq,
            "margins_batch16_vs_batch1": margins_b16 / margins_b1,
            "generation": tokens_b16 / tokens_b1,
        },
    }
    (OUT_DIR / "BENCH_inference.json").write_text(json.dumps(payload, indent=1) + "\n")

    write_out(
        "bench_inference_throughput.txt",
        "\n".join(
            [
                f"Inference throughput ({cfg.model.name}, {len(prompts)} Table-5 prompts)",
                f"  margins/sec   sequential: {margins_seq:8.2f}   "
                f"engine b1: {margins_b1:8.2f}   engine b{BIG_BATCH}: {margins_b16:8.2f}",
                f"                batched-vs-sequential speedup: "
                f"{payload['speedup']['margins_batched_vs_sequential']:.2f}x "
                f"(single-core ceiling ~2.3x for a 2-layer model; see module docstring)",
                f"  tokens/sec    batch=1: {tokens_b1:8.2f}   "
                f"batch={BIG_BATCH}: {tokens_b16:8.2f}   "
                f"speedup: {payload['speedup']['generation']:.2f}x",
                f"  artifact: {OUT_DIR / 'BENCH_inference.json'}",
            ]
        ),
    )


if __name__ == "__main__":
    main()
