"""E4 — Table 4: data race detection tool and compiler versions.

The registry metadata stands in for the paper's tool installation table;
the benchmark measures detector construction cost.
"""

from repro.detectors import build_tool_detectors
from repro.eval import render_table4

from benchmarks._shared import write_out


def test_table4_tool_versions(benchmark):
    detectors = benchmark(build_tool_detectors)
    write_out("table4_tool_versions.txt", render_table4())

    assert [d.name for d in detectors] == [
        "LLOV", "Intel Inspector", "ROMP", "Thread Sanitizer",
    ]
    text = render_table4()
    for needle in ("10.0.0", "2021.1", "20ac93c", "N/A",
                   "Clang/LLVM 10.0.0", "Intel Compiler 2021.3.0",
                   "GCC/gfortran 7.4.0", "Clang/LLVM 6.0.1"):
        assert needle in text
