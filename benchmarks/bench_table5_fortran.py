"""E6 — Table 5, Fortran block: all ten detectors on the 166-program
evaluation suite (84 race / 82 race-free)."""

from repro.eval import render_table5

from benchmarks._shared import eval_suite, harness, paper_shape, table5_output, write_out


def test_table5_fortran(benchmark):
    out = table5_output()
    write_out("table5_fortran.txt", render_table5(out.rows, "Fortran"))

    rows = {r.tool: r for r in out.rows if r.language == "Fortran"}
    assert rows["LLOV"].counts.total == 166

    # Paper shapes for the Fortran block — paper preset only (the small
    # preset's tiny models make the orderings seed-noise):
    if paper_shape():
        # 1. Every LLM method reaches TSR 1.0 ("Fortran's TSR for LLM-based
        #    methods is 1.0, surpassing existing tools").
        for llm in ("GPT-3.5", "GPT-4", "LLaMa", "LLaMa2", "HPC-GPT (L1)", "HPC-GPT (L2)"):
            assert rows[llm].tsr == 1.0, llm
        # 2. ...while some tools lose support on Fortran (TSan notably).
        assert rows["Thread Sanitizer"].tsr < 1.0
        assert rows["ROMP"].tsr < 1.0
        # 3. HPC-GPT leads the LLM pack and beats the zero-shot models.
        for tuned in ("HPC-GPT (L1)", "HPC-GPT (L2)"):
            assert rows[tuned].accuracy > rows["GPT-4"].accuracy
            assert rows[tuned].adjusted_f1 > rows["LLaMa2"].adjusted_f1
        # 4. Base models near chance.
        for base in ("LLaMa", "LLaMa2"):
            assert rows[base].accuracy < 0.65

    from repro.detectors import build_tool_detectors

    h = harness()
    for spec in eval_suite().by_language("Fortran"):
        h.traces_for(spec)

    def run_tools():
        return h.run(build_tool_detectors(), languages=("Fortran",))

    benchmark.pedantic(run_tools, rounds=1, iterations=1)
