"""E7 — §4.7.2 improvement percentages: HPC-GPT (L2) against the other
LLM-based methods, averaged across the five key metrics (recall,
specificity, precision, accuracy, adjusted F1).

Paper reference points: C/C++ gains of 36.11% / 34.84% / 26.33% / 11.1%
/ 3.85% over LLaMa / LLaMa-2 / GPT-3.5 / GPT-4 / HPC-GPT (L1); Fortran
gains of 31.89% / 35.23% / 21.34% / 15.79% / 7.28%.
"""

from repro.eval.tables import improvements_over

from benchmarks._shared import table5_output, write_out

BASELINES = ["LLaMa", "LLaMa2", "GPT-3.5", "GPT-4", "HPC-GPT (L1)"]


def test_improvements(benchmark):
    out = table5_output()

    def compute():
        return {
            lang: improvements_over(out.rows, "HPC-GPT (L2)", BASELINES, lang)
            for lang in ("C/C++", "Fortran")
        }

    gains = benchmark(compute)

    lines = ["§4.7.2 — mean improvement of HPC-GPT (L2) over baselines (%)"]
    for lang, by_base in gains.items():
        lines.append(f"{lang}:")
        for base in BASELINES:
            lines.append(f"  vs {base:<14} {by_base[base]:+8.2f}%")
    write_out("improvements.txt", "\n".join(lines))

    # Shape: large gains over the zero-shot base models, moderate over
    # GPT-3.5/GPT-4, small (possibly ~zero) over HPC-GPT (L1).
    for lang in ("C/C++", "Fortran"):
        g = gains[lang]
        assert g["LLaMa"] > 20 and g["LLaMa2"] > 20
        assert g["GPT-3.5"] > 5
        assert g["GPT-4"] > 0
        assert g["LLaMa"] > g["GPT-4"]
        assert abs(g["HPC-GPT (L1)"]) < 20
