"""E11 — Listing 3: the PLP-task qualitative comparison.

Question: dataset for Java -> C# code translation.  Expected behaviours:
GPT-4 answers generically (no entity), HPC-Ontology answers exactly via
its hand-written SPARQL template, HPC-GPT answers in natural language.
"""

from repro.eval.task1_eval import Task1Evaluator

from benchmarks._shared import system, write_out

QUESTION = ("What kind of dataset can be used for code translation tasks if the "
            "source language is Java and the target language is C#?")
GOLD = "CodeTrans"


def test_listing3_plp(benchmark):
    methods = system().task1_methods()

    def ask_all():
        return {name: fn(QUESTION) for name, fn in methods.items()}

    answers = benchmark.pedantic(ask_all, rounds=1, iterations=1)

    lines = ["Listing 3 — PLP task example", f"Question: {QUESTION}", ""]
    for name, ans in answers.items():
        lines.append(f"Answer ({name}): {ans}")
    write_out("listing3_plp.txt", "\n".join(lines))

    # GPT-4 (no post-cutoff catalog knowledge) must miss the entity...
    assert not Task1Evaluator.contains_entity(answers["GPT-4"] or "", GOLD)
    # ...the ontology must return it exactly...
    assert answers["HPC-Ontology"] == GOLD
    # ...and HPC-GPT must produce a non-empty free-form answer.
    assert isinstance(answers["HPC-GPT (L2)"], str) and answers["HPC-GPT (L2)"].strip()
