"""Retrieval throughput: the sparse/batched/incremental levers, measured.

Times the §5 retrieval subsystem at a ~1k-chunk index against the seed
implementation it replaced (reimplemented inline as the baseline):

* **index build** — vectorised sparse embed + bulk add vs the seed's
  per-text dense embedding loop;
* **incremental add** — 1-chunk-at-a-time ingestion: preallocated
  growable matrix (amortised O(1)) vs the seed's whole-matrix
  ``np.vstack`` per call (O(n²) growth).  The per-add cost of the first
  and last quartile is reported — flat for the growable store, linearly
  climbing for the seed;
* **query throughput** — per-query seed loop (dense embed + matvec)
  vs ``search`` vs ``search_batch`` (all queries in one sparse × dense
  matmul);
* **persistence** — a saved index must reload to bit-identical search
  results.

Writes ``benchmarks/out/BENCH_retrieval.json``.  The batched-vs-seed
speedup is asserted ≥ 5x (the acceptance floor of the retrieval PR).
"""

from __future__ import annotations

import json
import time

import numpy as np

from _shared import OUT_DIR, write_out
from repro.knowledge import build_knowledge_base
from repro.llm.pretrain import PretrainConfig, build_general_corpus, train_tokenizer_on
from repro.retrieval import TfidfEmbedder, VectorStore

N_CHUNKS = 1000
N_QUERIES = 128
TOP_K = 5
VOCAB = 420


# -- seed reference implementations (the pre-PR behaviour) ------------------


def seed_embed(embedder: TfidfEmbedder, text: str) -> np.ndarray:
    """The seed's per-text dense TF-IDF loop."""
    vec = np.zeros(embedder.dim, dtype=np.float64)
    ids = embedder.tokenizer.encode(text)
    if not ids:
        return vec
    for i in ids:
        if i < embedder.dim:
            vec[i] += 1.0
    vec /= len(ids)
    vec *= embedder.idf
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec


class SeedStore:
    """The seed store: dense per-text embedding, vstack-per-add."""

    def __init__(self, embedder: TfidfEmbedder) -> None:
        self.embedder = embedder
        self._matrix = np.zeros((0, embedder.dim), dtype=np.float64)
        self._texts: list[str] = []

    def add(self, texts: list[str]) -> None:
        vecs = np.stack([seed_embed(self.embedder, t) for t in texts])
        self._matrix = np.vstack([self._matrix, vecs])
        self._texts.extend(texts)

    def search(self, query: str, k: int) -> list[int]:
        q = seed_embed(self.embedder, query)
        scores = self._matrix @ q
        k = min(k, len(self._texts))
        top = np.argpartition(-scores, k - 1)[:k]
        return top[np.argsort(-scores[top])].tolist()


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _rate(n_items: int, fn, repeats: int = 3) -> float:
    fn()  # warm
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return repeats * n_items / (time.perf_counter() - start)


def main() -> None:
    kb = build_knowledge_base(plp_entries_per_category=68, mlperf_rows=120)
    texts = [c.text for c in kb]
    assert len(texts) >= N_CHUNKS, f"need {N_CHUNKS} chunks, have {len(texts)}"
    texts = texts[:N_CHUNKS]
    corpus = build_general_corpus(PretrainConfig(n_sentences=150)) + texts[:80]
    tokenizer = train_tokenizer_on(corpus, vocab_size=VOCAB)
    embedder = TfidfEmbedder(tokenizer).fit(texts)
    for t in texts:  # warm the tokenizer word cache for fair timings
        tokenizer.encode(t)

    queries = [
        f"What is the System if the Accelerator is used with {t.split('.')[0]}?"
        for t in texts[:N_QUERIES]
    ]

    # -- index build ---------------------------------------------------------

    def build_new() -> VectorStore:
        s = VectorStore(embedder)
        s.add(texts)
        return s

    def build_seed() -> SeedStore:
        s = SeedStore(embedder)
        s.add(texts)
        return s

    build_s_new = _timed(build_new)
    build_s_seed = _timed(build_seed)
    store = build_new()
    seed_store = build_seed()

    # -- incremental add (cold store, one chunk per call) --------------------

    def incremental(factory):
        s = factory(embedder)
        per_add: list[float] = []
        for t in texts:
            start = time.perf_counter()
            s.add([t])
            per_add.append(time.perf_counter() - start)
        return np.asarray(per_add)

    inc_new = incremental(VectorStore)
    inc_seed = incremental(SeedStore)
    quartile = N_CHUNKS // 4
    new_first_q = float(inc_new[:quartile].mean())
    new_last_q = float(inc_new[-quartile:].mean())
    seed_first_q = float(inc_seed[:quartile].mean())
    seed_last_q = float(inc_seed[-quartile:].mean())

    # -- query throughput ----------------------------------------------------

    qps_seed = _rate(len(queries), lambda: [seed_store.search(q, TOP_K) for q in queries])
    qps_single = _rate(len(queries), lambda: [store.search(q, TOP_K) for q in queries])
    qps_batch = _rate(len(queries), lambda: store.search_batch(queries, k=TOP_K))
    speedup_batch = qps_batch / qps_seed

    # -- persistence: bit-identical reload -----------------------------------

    index_path = OUT_DIR / "bench_retrieval_index.npz"
    store.save(index_path)
    reloaded = VectorStore.load(index_path, tokenizer)
    before = store.search_batch(queries, k=TOP_K)
    after = reloaded.search_batch(queries, k=TOP_K)
    reload_bit_identical = [
        [(h.text, h.score) for h in row] for row in before
    ] == [[(h.text, h.score) for h in row] for row in after]
    index_path.unlink()

    assert reload_bit_identical, "reloaded index diverged from the live one"
    assert speedup_batch >= 5.0, (
        f"batched query speedup {speedup_batch:.2f}x below the 5x floor"
    )

    payload = {
        "n_chunks": N_CHUNKS,
        "n_queries": len(queries),
        "top_k": TOP_K,
        "vocab": VOCAB,
        "build_seconds": {"seed_dense_loop": build_s_seed, "sparse_batch": build_s_new},
        "incremental_add_ms_per_chunk": {
            "seed_first_quartile": seed_first_q * 1e3,
            "seed_last_quartile": seed_last_q * 1e3,
            "growable_first_quartile": new_first_q * 1e3,
            "growable_last_quartile": new_last_q * 1e3,
        },
        "incremental_add_seconds": {
            "seed_vstack": float(inc_seed.sum()),
            "growable": float(inc_new.sum()),
        },
        "queries_per_sec": {
            "seed_per_text_loop": qps_seed,
            "search_single": qps_single,
            "search_batch": qps_batch,
        },
        "speedup": {
            "build": build_s_seed / build_s_new,
            "incremental_add": float(inc_seed.sum() / inc_new.sum()),
            "batched_query_vs_seed": speedup_batch,
            # Flat per-add cost as the index grows = amortised O(1); the
            # seed's ratio climbs with n (full-matrix copy per call).
            "add_last_vs_first_quartile_growable": new_last_q / new_first_q,
            "add_last_vs_first_quartile_seed": seed_last_q / seed_first_q,
        },
        "reload_bit_identical": reload_bit_identical,
    }
    (OUT_DIR / "BENCH_retrieval.json").write_text(json.dumps(payload, indent=1) + "\n")

    write_out(
        "bench_retrieval_throughput.txt",
        "\n".join(
            [
                f"Retrieval throughput ({N_CHUNKS}-chunk index, {len(queries)} queries)",
                f"  build         seed: {build_s_seed:6.2f}s   sparse: {build_s_new:6.2f}s "
                f"({payload['speedup']['build']:.1f}x)",
                f"  incr. add     seed: {inc_seed.sum():6.2f}s   growable: {inc_new.sum():6.2f}s "
                f"({payload['speedup']['incremental_add']:.1f}x; per-add last/first quartile "
                f"{payload['speedup']['add_last_vs_first_quartile_growable']:.2f}x vs seed "
                f"{payload['speedup']['add_last_vs_first_quartile_seed']:.2f}x)",
                f"  queries/sec   seed: {qps_seed:8.1f}   single: {qps_single:8.1f}   "
                f"batched: {qps_batch:8.1f}  ({speedup_batch:.1f}x vs seed)",
                f"  reload bit-identical: {reload_bit_identical}",
                f"  artifact: {OUT_DIR / 'BENCH_retrieval.json'}",
            ]
        ),
    )


if __name__ == "__main__":
    main()
