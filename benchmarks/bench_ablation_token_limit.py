"""E13 — §5 ablation: the LLM token limit and the chunking mitigation.

Sweeps the context budget and reports the TSR of plain prompt-fed
detection on C/C++ (the paper's 8k budget leaves 14/177 files
unsupported), then shows that the §5 partitioning mechanism restores
TSR 1.0 without giving up detection quality on the oversize files.
"""

import numpy as np

from repro.detectors.base import Verdict
from repro.detectors.llm_detector import ChunkedHPCGPTDetector, HPCGPTDetector

from benchmarks._shared import eval_suite, system, write_out


def test_token_limit_ablation(benchmark):
    sys_ = system()
    tok = sys_.tokenizer
    model = sys_.finetuned("l2")
    threshold = sys_.threshold("l2")
    specs = eval_suite().by_language("C/C++")

    det = HPCGPTDetector("HPC-GPT (L2)", model, tok, threshold)
    counts = {s.id: det.prompt_tokens(s) for s in specs}

    # Data-driven sweep brackets: below the median normal prompt, the
    # paper's 8k budget, and above the largest padded file.
    values = np.array(sorted(counts.values()))
    budgets = (int(values[len(values) // 2]), 8192, int(values[-1]) + 1)

    def sweep():
        tsr = {}
        for budget in budgets:
            supported = sum(1 for s in specs if counts[s.id] <= budget)
            tsr[budget] = supported / len(specs)
        return tsr

    tsr = benchmark(sweep)
    BUDGETS = budgets

    # Chunking mitigation on the oversize files only (cheap enough to run
    # outside the benchmark loop).
    chunked = ChunkedHPCGPTDetector("HPC-GPT (L2, chunked)", model, tok, threshold)
    oversize = [s for s in specs if "oversize" in s.features]
    chunk_ok = sum(
        (chunked.run(s).verdict is Verdict.RACE) == (s.label == "yes") for s in oversize
    )

    lines = ["§5 ablation — token budget vs tool support rate (C/C++)"]
    for budget in BUDGETS:
        lines.append(f"  budget {budget:>6}: TSR = {tsr[budget]:.4f}")
    lines.append(f"  chunked     : TSR = 1.0000 "
                 f"({chunk_ok}/{len(oversize)} oversize files classified correctly)")
    write_out("ablation_token_limit.txt", "\n".join(lines))

    lo, mid, hi = BUDGETS
    assert abs(tsr[mid] - 163 / 177) < 1e-9  # the paper's 14 oversize files
    assert tsr[lo] < tsr[mid] < tsr[hi] == 1.0
    assert all(chunked.supports(s) for s in oversize)
    assert chunk_ok >= len(oversize) // 2  # mitigation retains signal
