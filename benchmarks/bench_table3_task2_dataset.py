"""E3 — Table 3: the Task-2 (data race detection) instruction dataset at
full paper counts: 14 categories x {C/C++, Fortran}, 3338 instances.
"""

from repro.datagen import TABLE3_TARGETS, DataCollectionPipeline
from repro.datagen.pipeline import RACE_CATEGORIES
from repro.drb import DRBSuite

from benchmarks._shared import write_out


def _collect():
    pool = DRBSuite.training(n_per_category=150).chunks()
    return DataCollectionPipeline().collect_task2(pool, scale=1.0)


def test_table3_full_dataset(benchmark):
    bundle = benchmark.pedantic(_collect, rounds=1, iterations=1)
    counts = bundle.counts_by_language_category()

    lines = ["Table 3: Dataset Information for Task 2",
             f"{'Language':<9} {'Category':<36} {'Number':>7} {'Percentage':>11} {'Label':>6}"]
    for lang in ("C/C++", "Fortran"):
        lang_total = sum(v for (l, _), v in counts.items() if l == lang)
        for (l, cat), target in TABLE3_TARGETS.items():
            if l != lang:
                continue
            n = counts.get((l, cat), 0)
            label = "yes" if cat in RACE_CATEGORIES else "no"
            lines.append(
                f"{lang:<9} {cat:<36} {n:>7} {100.0 * n / lang_total:>10.2f}% {label:>6}"
            )
    lines.append(f"TOTAL {len(bundle)} (paper: 3338); filter: {bundle.stats.as_dict()}")
    write_out("table3_task2_dataset.txt", "\n".join(lines))

    for key, target in TABLE3_TARGETS.items():
        assert counts.get(key, 0) == target, key
    assert len(bundle) == sum(TABLE3_TARGETS.values()) == 3338
