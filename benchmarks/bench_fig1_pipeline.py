"""E8 — Figure 1: the four-stage HPC-GPT architecture, end to end.

Runs data collection -> supervised fine-tuning -> evaluation -> deployment
in one pass at the small preset and checks each stage's artifact.  The
benchmark times the full pipeline (fresh, uncached build).
"""

import dataclasses

from repro.core import HPCGPTSystem, SMALL_PRESET
from repro.serve import HPCGPTClient
from repro.serve.server import start_background

from benchmarks._shared import write_out


def _end_to_end():
    cfg = dataclasses.replace(SMALL_PRESET, use_cache=False)
    system = HPCGPTSystem(cfg)

    # Stage 1 — automatic data collection with LLM.
    bundle = system.collect_data()
    # Stage 2 — training pipeline (pretrained base -> SFT model).
    model = system.finetuned("l2")
    # Stage 3 — evaluation on HPC task benchmarks (one quick check).
    racy = ("int i;\ndouble y[32], x[32];\n#pragma omp parallel for\n"
            "for (i = 1; i < 32; i++) { y[i] = y[i-1] + x[i]; }\n")
    verdict = system.detect_race(racy)
    # Stage 4 — deployment with web GUI / API.
    server, _ = start_background(system)
    host, port = server.server_address
    client = HPCGPTClient(f"http://{host}:{port}")
    health = client.health()
    api_verdict = client.detect(racy)
    server.shutdown()
    return bundle, model, verdict, health, api_verdict


def test_fig1_pipeline(benchmark):
    bundle, model, verdict, health, api_verdict = benchmark.pedantic(
        _end_to_end, rounds=1, iterations=1
    )
    lines = [
        "Figure 1 — HPC-GPT architecture, stage artifacts:",
        f"  1. data collection : {len(bundle)} instruction instances "
        f"({bundle.stats.rejected()} filtered)",
        f"  2. training        : {model.config.name}, {model.num_parameters():,} params",
        f"  3. evaluation      : loop-carried kernel -> {verdict}",
        f"  4. deployment      : /health -> {health['status']}, "
        f"API detect -> {api_verdict}",
    ]
    write_out("fig1_pipeline.txt", "\n".join(lines))

    assert len(bundle) > 50
    assert health["status"] == "ok"
    assert api_verdict == verdict
