"""E2 — Table 2: the Task-1 instruction dataset at full paper counts
(13 PLP categories, 603 instances; 5 MLPerf categories, 1820 instances).
"""

from repro.datagen import TABLE2_TARGETS, DataCollectionPipeline
from repro.datagen.pipeline import _MLPERF_CATEGORIES
from repro.knowledge import build_knowledge_base

from benchmarks._shared import write_out


def _collect():
    kb = build_knowledge_base(plp_entries_per_category=12, mlperf_rows=120)
    return DataCollectionPipeline().collect_task1(kb, scale=1.0)


def test_table2_full_dataset(benchmark):
    bundle = benchmark.pedantic(_collect, rounds=1, iterations=1)
    counts = bundle.counts_by_category()
    plp_pct = bundle.percentages("plp")
    ml_pct = bundle.percentages("mlperf")

    lines = ["Table 2: Dataset Information for Task 1",
             f"{'Subtask':<8} {'Category':<26} {'Number':>7} {'Percentage':>11}"]
    for cat, target in TABLE2_TARGETS.items():
        subtask = "MLPerf" if cat in _MLPERF_CATEGORIES else "PLP"
        pct = (ml_pct if subtask == "MLPerf" else plp_pct).get(cat, 0.0)
        lines.append(f"{subtask:<8} {cat:<26} {counts.get(cat, 0):>7} {pct:>10.2f}%")
    lines.append(f"{'':<8} {'TOTAL':<26} {len(bundle):>7}")
    lines.append(f"filter stats: {bundle.stats.as_dict()}")
    write_out("table2_task1_dataset.txt", "\n".join(lines))

    # Composition must match the paper exactly.
    for cat, target in TABLE2_TARGETS.items():
        assert counts.get(cat, 0) == target, cat
    assert len(bundle) == sum(TABLE2_TARGETS.values()) == 2423
