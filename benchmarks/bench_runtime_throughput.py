"""Runtime throughput: the epoch-matrix execution engine, measured.

Three views of the rebuilt ``repro.runtime``:

* **trace generation** — events/s executing the corpus (interned clock
  rows instead of per-event dict copies);
* **race checking** — the epoch-matrix ``hb_races`` vs the seed
  ``combinations`` + dict-``VectorClock`` path (``hb_races_reference``,
  kept verbatim in the tree), timed over (a) a *hot corpus* of
  contention-heavy kernels — large per-location groups, the pairwise
  path's quadratic regime — and (b) every trace of the DRB evaluation
  suite.  The hot-path speedup is asserted ≥ 3x (the PR's acceptance
  floor);
* **schedule exploration** — schedules-to-first-race per strategy over
  the racy half of the suite: diversity, quantified.

Every run also asserts **bit-identical verdict parity** between the two
checkers for TSan, ROMP, Inspector, and the HB oracle over the parity
corpus (the full suite; one spec per category/language under
``--smoke``, which also skips the machine-noise-sensitive speed floor).

Writes ``benchmarks/out/BENCH_runtime.json``.
"""

from __future__ import annotations

import argparse
import json
import time

from _shared import OUT_DIR, write_out
from repro.detectors.inspector import lockset_races
from repro.detectors.romp import _ordered_only_conflicts
from repro.drb import DRBSuite
from repro.openmp import parse_c
from repro.runtime import Machine, MachineConfig, execute
from repro.runtime.machine import hb_races, hb_races_reference
from repro.runtime.schedules import SCHEDULE_STRATEGIES

N_SCHEDULES = 2  # per spec for the checking corpus
FIRST_RACE_BUDGET = 8  # schedule budget for the exploration metric
SPEEDUP_FLOOR = 3.0

# Contention-heavy kernels: many events per location, so the pairwise
# reference has no short-circuit escape.  Race-free variants (critical,
# atomic, reduction) are the true hot path — every pair gets checked.
HOT_KERNELS = {
    "contended_rmw": """
int i;
double s;
#pragma omp parallel for
for (i = 0; i < %N%; i++) { s = s + 1; }
""",
    "critical_accumulate": """
int i;
double s;
#pragma omp parallel for
for (i = 0; i < %N%; i++) {
  #pragma omp critical
  { s = s + 1; }
}
""",
    "atomic_accumulate": """
int i;
double s;
#pragma omp parallel for
for (i = 0; i < %N%; i++) {
  #pragma omp atomic
  s = s + 1;
}
""",
    "neighbor_sweep": """
int i;
double a[%N%];
#pragma omp parallel for
for (i = 1; i < %N%; i++) { a[i] = a[i-1] + 1; }
""",
}


def hot_corpus(n: int, n_threads: int = 4):
    traces = []
    for name, template in HOT_KERNELS.items():
        prog = parse_c(template.replace("%N%", str(n)))
        traces.append((name, execute(prog, n_threads=n_threads, schedule_seed=0)))
    return traces


def check_all(checker, traces, max_reports: int = 10) -> int:
    found = 0
    for trace in traces:
        for lanes in (True, False):
            found += len(checker(trace, lanes, max_reports))
    return found


def timed_check(checker, traces, repeats: int) -> tuple[float, int]:
    found = check_all(checker, traces)  # warm (ClockView dicts, caches)
    start = time.perf_counter()
    for _ in range(repeats):
        check_all(checker, traces)
    return (time.perf_counter() - start) / repeats, found


def parity_specs(suite: DRBSuite, smoke: bool):
    if not smoke:
        return list(suite.specs)
    seen, specs = set(), []
    for spec in suite.specs:
        key = (spec.language, spec.category)
        if key not in seen:
            seen.add(key)
            specs.append(spec)
    return specs


def verdict_signature(traces) -> tuple:
    """(tsan, romp, oracle) from a given HB checker's view — computed
    twice, once per checker, and compared bit for bit.  Inspector's
    lockset check and ROMP's ordered-only channel never consult clocks,
    so they are computed once (unchanged by construction) and folded
    into both signatures rather than vacuously re-run per checker."""
    ordered_only = _ordered_only_conflicts(traces[0])
    inspector = any(lockset_races(t, max_reports=1) for t in traces)

    def sig(checker):
        tsan = any(bool(checker(t, False, 1)) for t in traces)
        romp = bool(checker(traces[0], False, 1)) or ordered_only
        oracle = any(bool(checker(t, True, 1)) for t in traces)
        return (tsan, romp, oracle, inspector)

    return sig(hb_races), sig(hb_races_reference)


def schedules_to_first_race(suite: DRBSuite, smoke: bool) -> dict:
    racy = [s for s in suite.specs if s.label == "yes"]
    if smoke:
        racy = racy[:20]
    out = {}
    for strategy in sorted(SCHEDULE_STRATEGIES):
        machine = Machine(
            MachineConfig(
                n_threads=2,
                n_schedules=FIRST_RACE_BUDGET,
                strategies=(strategy,),
            )
        )
        used, found = [], 0
        for spec in racy:
            n = 0
            for trace in machine.iter_traces(spec.parse()):
                n += 1
                if hb_races(trace, max_reports=1):
                    found += 1
                    used.append(n)
                    break
        out[strategy] = {
            "manifested": found,
            "of": len(racy),
            "mean_schedules_to_first_race": (
                round(sum(used) / len(used), 3) if used else None
            ),
        }
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus, parity asserted, speed floor skipped")
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    smoke = args.smoke
    repeats = args.repeats or (2 if smoke else 5)
    hot_n = 120 if smoke else 400

    suite = DRBSuite.evaluation(seed=0)
    specs = parity_specs(suite, smoke)

    # -- trace generation + verdict parity ------------------------------------

    machine = Machine(MachineConfig(n_threads=2, n_schedules=N_SCHEDULES))
    suite_traces, n_events = [], 0
    parity_failures = []
    gen_start = time.perf_counter()
    for spec in specs:
        traces = machine.traces(spec.parse())
        suite_traces.extend(traces)
        n_events += sum(len(t.events) for t in traces)
    gen_s = time.perf_counter() - gen_start
    for spec, idx in zip(specs, range(0, len(suite_traces), N_SCHEDULES)):
        fast, slow = verdict_signature(suite_traces[idx : idx + N_SCHEDULES])
        if fast != slow:
            parity_failures.append(spec.id)
    assert not parity_failures, f"verdict parity broken: {parity_failures[:5]}"

    hot = hot_corpus(hot_n)
    hot_traces = [t for _, t in hot]
    hot_events = sum(len(t.events) for t in hot_traces)

    # -- race checking: epoch matrix vs seed dict clocks ----------------------

    hot_new_s, hot_new_found = timed_check(hb_races, hot_traces, repeats)
    hot_ref_s, hot_ref_found = timed_check(hb_races_reference, hot_traces, repeats)
    assert hot_new_found == hot_ref_found
    suite_new_s, suite_found = timed_check(hb_races, suite_traces, repeats)
    suite_ref_s, suite_ref_found = timed_check(hb_races_reference, suite_traces, repeats)
    assert suite_found == suite_ref_found

    speedup_hot = hot_ref_s / hot_new_s
    speedup_suite = suite_ref_s / suite_new_s
    if not smoke:
        assert speedup_hot >= SPEEDUP_FLOOR, (
            f"hot-path race-check speedup {speedup_hot:.2f}x "
            f"below the {SPEEDUP_FLOOR}x floor"
        )

    # -- exploration diversity -------------------------------------------------

    exploration = schedules_to_first_race(suite, smoke)

    payload = {
        "mode": "smoke" if smoke else "full",
        "corpus": {
            "parity_specs": len(specs),
            "suite_traces": len(suite_traces),
            "suite_events": n_events,
            "hot_kernels": {name: len(t.events) for name, t in hot},
            "hot_iterations": hot_n,
        },
        "trace_generation": {
            "seconds": round(gen_s, 4),
            "events_per_s": round(n_events / gen_s, 1),
            "traces_per_s": round(len(suite_traces) / gen_s, 1),
        },
        "race_checking": {
            "repeats": repeats,
            "hot_seconds": {"epoch_matrix": hot_new_s, "seed_dict_vc": hot_ref_s},
            "hot_events_per_s": {
                "epoch_matrix": round(2 * hot_events / hot_new_s, 1),
                "seed_dict_vc": round(2 * hot_events / hot_ref_s, 1),
            },
            "suite_seconds": {"epoch_matrix": suite_new_s, "seed_dict_vc": suite_ref_s},
            "suite_checks_per_s": {
                "epoch_matrix": round(2 * len(suite_traces) / suite_new_s, 1),
                "seed_dict_vc": round(2 * len(suite_traces) / suite_ref_s, 1),
            },
            "races_found_hot": hot_new_found,
            "races_found_suite": suite_found,
            "speedup_hot": round(speedup_hot, 2),
            "speedup_suite": round(speedup_suite, 2),
            "floor": SPEEDUP_FLOOR if not smoke else None,
        },
        "verdict_parity": {
            "specs": len(specs),
            "bit_identical": True,
            # Clock-dependent verdicts compared across checkers;
            # Inspector's lockset never reads clocks (computed once,
            # unchanged by construction).
            "tools": ["Thread Sanitizer", "ROMP", "HB oracle"],
            "clock_independent": ["Intel Inspector"],
        },
        "schedules_to_first_race": exploration,
    }
    (OUT_DIR / "BENCH_runtime.json").write_text(json.dumps(payload, indent=1) + "\n")

    explore_lines = [
        f"    {name:<12} {row['manifested']}/{row['of']} racy specs, "
        f"mean {row['mean_schedules_to_first_race']} schedules to first race"
        for name, row in exploration.items()
    ]
    write_out(
        "bench_runtime_throughput.txt",
        "\n".join(
            [
                f"Runtime throughput ({'smoke' if smoke else 'full'}; "
                f"{len(specs)} parity specs, hot kernels at N={hot_n})",
                f"  trace generation  {payload['trace_generation']['events_per_s']:>10.0f} events/s",
                f"  race check (hot)  seed: {hot_ref_s:7.3f}s   epoch: {hot_new_s:7.3f}s "
                f"({speedup_hot:.1f}x)",
                f"  race check (DRB)  seed: {suite_ref_s:7.3f}s   epoch: {suite_new_s:7.3f}s "
                f"({speedup_suite:.1f}x)",
                f"  verdict parity    {len(specs)} specs bit-identical "
                "(TSan/ROMP/oracle; Inspector clock-independent)",
                "  schedules to first race:",
                *explore_lines,
                f"  artifact: {OUT_DIR / 'BENCH_runtime.json'}",
            ]
        ),
    )


if __name__ == "__main__":
    main()
